(* Tests for the multi-core extension: the SMP processor model, the SMP
   host's parallel dispatch, the max-core ondemand rule and PAS-SMP. *)

module Smp = Cpu_model.Smp
module Smp_host = Hypervisor.Smp_host
module Domain = Hypervisor.Domain
module Workload = Workloads.Workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float_eps eps = Alcotest.(check (float eps))
let sec = Sim_time.of_sec

let optiplex = Cpu_model.Arch.optiplex_755
let i7 = Cpu_model.Arch.elite_8300

(* ------------------------------------------------------------------ *)
(* Smp model *)

let smp_domains_per_package () =
  let smp = Smp.create ~cores:4 optiplex in
  check_int "one domain" 1 (Smp.domain_count smp);
  check_int "core 3 in domain 0" 0 (Smp.domain_of_core smp 3);
  check_int "all cores in domain" 4 (List.length (Smp.cores_of_domain smp 0))

let smp_domains_per_core () =
  let smp = Smp.create ~policy:Smp.Per_core ~cores:4 optiplex in
  check_int "four domains" 4 (Smp.domain_count smp);
  check_int "core 2 in domain 2" 2 (Smp.domain_of_core smp 2);
  Alcotest.(check (list int)) "singleton" [ 1 ] (Smp.cores_of_domain smp 1)

let smp_per_core_freq_independent () =
  let smp = Smp.create ~policy:Smp.Per_core ~cores:2 optiplex in
  Smp.set_freq smp ~now:Sim_time.zero ~domain:0 1600;
  check_int "core0 scaled" 1600 (Smp.freq_of_core smp 0);
  check_int "core1 untouched" 2667 (Smp.freq_of_core smp 1);
  check_float_eps 1e-6 "capacity mixes speeds" (1.0 +. (1600.0 /. 2667.0))
    (Smp.total_capacity smp)

let smp_package_freq_shared () =
  let smp = Smp.create ~cores:2 optiplex in
  Smp.set_freq smp ~now:Sim_time.zero ~domain:0 1600;
  check_int "both cores scaled" 1600 (Smp.freq_of_core smp 1)

let smp_capacity () =
  let smp = Smp.create ~cores:3 optiplex in
  check_float_eps 1e-9 "max capacity" 3.0 (Smp.max_capacity smp);
  check_float_eps 1e-9 "at max frequency" 3.0 (Smp.total_capacity smp)

let smp_invalid () =
  Alcotest.check_raises "cores" (Invalid_argument "Smp.create: cores must be >= 1") (fun () ->
      ignore (Smp.create ~cores:0 optiplex));
  let smp = Smp.create ~cores:2 optiplex in
  Alcotest.check_raises "core range" (Invalid_argument "Smp.domain_of_core: core out of range")
    (fun () -> ignore (Smp.domain_of_core smp 5));
  Alcotest.check_raises "power arity"
    (Invalid_argument "Smp.record_power: one utilization per core required") (fun () ->
      Smp.record_power smp ~dt:(sec 1) ~core_utils:[| 1.0 |])

let smp_power_accounting () =
  let smp = Smp.create ~cores:2 optiplex in
  (* Both cores fully busy at max frequency for 10 s: package max power. *)
  Smp.record_power smp ~dt:(sec 10) ~core_utils:[| 1.0; 1.0 |];
  check_float_eps 1.0 "full power" (95.0 *. 10.0) (Smp.energy_joules smp);
  let idle = Smp.create ~cores:2 optiplex in
  Smp.record_power idle ~dt:(sec 10) ~core_utils:[| 0.0; 0.0 |];
  check_float_eps 1.0 "idle floor" (45.0 *. 10.0) (Smp.energy_joules idle)

let smp_per_core_saves_static () =
  (* One idle core clocked down must cost less than the same core at max. *)
  let high = Smp.create ~policy:Smp.Per_core ~cores:2 optiplex in
  Smp.record_power high ~dt:(sec 10) ~core_utils:[| 1.0; 0.0 |];
  let low = Smp.create ~policy:Smp.Per_core ~cores:2 optiplex in
  Smp.set_freq low ~now:Sim_time.zero ~domain:1 1600;
  Smp.record_power low ~dt:(sec 10) ~core_utils:[| 1.0; 0.0 |];
  check_bool "leakage savings" true (Smp.energy_joules low < Smp.energy_joules high)

(* ------------------------------------------------------------------ *)
(* Smp_host dispatch *)

let smp_host_parallelism () =
  (* Two busy 1-vCPU domains on two cores: both should run in parallel and
     each consume ~one core. *)
  let sim = Simulator.create () in
  let smp = Smp.create ~cores:2 optiplex in
  let a = Domain.create ~vcpus:1 ~name:"a" ~credit_pct:50.0 (Workload.busy_loop ()) in
  let b = Domain.create ~vcpus:1 ~name:"b" ~credit_pct:50.0 (Workload.busy_loop ()) in
  let scheduler = Sched_credit.create ~host_capacity:2 [ a; b ] in
  let host = Smp_host.create ~sim ~smp ~scheduler () in
  Smp_host.run_for host (sec 10);
  check_float_eps 0.1 "a one core" 10.0 (Sim_time.to_sec (Domain.cpu_time a));
  check_float_eps 0.1 "b one core" 10.0 (Sim_time.to_sec (Domain.cpu_time b));
  check_float_eps 0.1 "both cores busy" 20.0 (Sim_time.to_sec (Smp_host.total_busy host))

let smp_host_vcpu_bound () =
  (* A single 1-vCPU domain cannot use more than one core's worth of time
     even with the whole host to itself. *)
  let sim = Simulator.create () in
  let smp = Smp.create ~cores:2 optiplex in
  let a = Domain.create ~vcpus:1 ~name:"a" ~credit_pct:0.0 (Workload.busy_loop ()) in
  let scheduler = Sched_credit.create ~host_capacity:2 [ a ] in
  let host = Smp_host.create ~sim ~smp ~scheduler () in
  Smp_host.run_for host (sec 10);
  check_float_eps 0.1 "half the host" 10.0 (Sim_time.to_sec (Domain.cpu_time a))

let smp_host_two_vcpus () =
  let sim = Simulator.create () in
  let smp = Smp.create ~cores:2 optiplex in
  let a = Domain.create ~vcpus:2 ~name:"a" ~credit_pct:0.0 (Workload.busy_loop ()) in
  let scheduler = Sched_credit.create ~host_capacity:2 [ a ] in
  let host = Smp_host.create ~sim ~smp ~scheduler () in
  Smp_host.run_for host (sec 10);
  check_float_eps 0.1 "whole host" 20.0 (Sim_time.to_sec (Domain.cpu_time a))

let smp_host_credit_is_host_wide () =
  (* 20% credit of a 2-core host = 0.4 core-seconds per second. *)
  let sim = Simulator.create () in
  let smp = Smp.create ~cores:2 optiplex in
  let a = Domain.create ~vcpus:1 ~name:"a" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let scheduler = Sched_credit.create ~host_capacity:2 [ a ] in
  let host = Smp_host.create ~sim ~smp ~scheduler () in
  Smp_host.run_for host (sec 10);
  check_float_eps 0.1 "40% of one core" 4.0 (Sim_time.to_sec (Domain.cpu_time a))

let smp_host_work_tracking () =
  let sim = Simulator.create () in
  let smp = Smp.create ~init_freq:1600 ~cores:2 optiplex in
  let a = Domain.create ~vcpus:1 ~name:"a" ~credit_pct:0.0 (Workload.busy_loop ()) in
  let scheduler = Sched_credit.create ~host_capacity:2 [ a ] in
  let host = Smp_host.create ~sim ~smp ~scheduler () in
  Smp_host.run_for host (sec 10);
  (* One core at ratio 0.6 for 10 s. *)
  check_float_eps 0.1 "frequency-weighted work" (10.0 *. 1600.0 /. 2667.0)
    (Smp_host.domain_work host a)

(* ------------------------------------------------------------------ *)
(* Max-core ondemand and PAS-SMP *)

let smp_host_series () =
  let sim = Simulator.create () in
  let smp = Smp.create ~cores:2 optiplex in
  let a = Domain.create ~vcpus:1 ~name:"a" ~credit_pct:40.0 (Workload.busy_loop ()) in
  let scheduler = Sched_credit.create ~host_capacity:2 [ a ] in
  let host = Smp_host.create ~sim ~smp ~scheduler () in
  Smp_host.run_for host (sec 10);
  let load = Smp_host.series_domain_load host a in
  (* 40% of the whole 2-core host = 0.8 core-seconds/s = 40% host time. *)
  check_float_eps 0.5 "host-time share" 40.0 (Series.mean load);
  check_float_eps 0.5 "absolute at max freq" 40.0
    (Series.mean (Smp_host.series_domain_absolute_load host a));
  check_int "freq series sampled" 10 (Series.length (Smp_host.series_domain_frequency host ~domain:0));
  Alcotest.check_raises "bad domain"
    (Invalid_argument "Smp_host.series_domain_frequency: domain out of range") (fun () ->
      ignore (Smp_host.series_domain_frequency host ~domain:7))

let max_core_rule_keeps_package_fast () =
  (* A work-conserving scheduler compacts the busy VM on one core; the
     max-over-cores rule must keep the package at maximum frequency. *)
  let sim = Simulator.create () in
  let smp = Smp.create ~cores:2 i7 in
  let busy = Domain.create ~vcpus:1 ~name:"busy" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let lazy_ = Domain.create ~vcpus:1 ~name:"lazy" ~credit_pct:70.0 (Workload.idle ()) in
  let scheduler = Sched_credit2.create [ busy; lazy_ ] in
  let dvfs = Smp_host.ondemand_max_core smp ~period:(Sim_time.of_ms 100) in
  let host = Smp_host.create ~sim ~smp ~scheduler ~dvfs () in
  Smp_host.run_for host (sec 10);
  check_int "package stays at max" 3400 (Smp.current_freq smp ~domain:0)

let max_core_rule_lowers_when_spread () =
  (* Under the fix-credit scheduler the same demand is capped thin: no core
     looks busy and the package clocks down. *)
  let sim = Simulator.create () in
  let smp = Smp.create ~cores:2 i7 in
  let busy = Domain.create ~vcpus:1 ~name:"busy" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let lazy_ = Domain.create ~vcpus:1 ~name:"lazy" ~credit_pct:70.0 (Workload.idle ()) in
  let scheduler = Sched_credit.create ~host_capacity:2 [ busy; lazy_ ] in
  let dvfs = Smp_host.ondemand_max_core smp ~period:(Sim_time.of_ms 100) in
  let host = Smp_host.create ~sim ~smp ~scheduler ~dvfs () in
  Smp_host.run_for host (sec 10);
  check_int "package clocked down" 1600 (Smp.current_freq smp ~domain:0)

let pas_smp_compensates () =
  let sim = Simulator.create () in
  let smp = Smp.create ~cores:2 optiplex in
  let app = Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate:1.0) () in
  let v20 =
    Domain.create ~vcpus:1 ~name:"V20" ~credit_pct:20.0 (Workloads.Web_app.workload app)
  in
  let v70 = Domain.create ~vcpus:1 ~name:"V70" ~credit_pct:70.0 (Workload.idle ()) in
  let domains = [ v20; v70 ] in
  let scheduler = Sched_credit.create ~host_capacity:2 domains in
  let pas = Pas.Pas_smp.create ~smp ~scheduler domains in
  let host = Smp_host.create ~sim ~smp ~scheduler ~dvfs:(Pas.Pas_smp.policy pas) () in
  Smp_host.run_for host (sec 30);
  check_int "package slow" 1600 (Smp.current_freq smp ~domain:0);
  check_bool "evaluations" true (Pas.Pas_smp.evaluations pas > 10);
  (* V20 must keep 20% of the host's maximum capacity: work rate 0.4 abs/s
     on a 2-core host. *)
  let expected = 0.2 *. 2.0 *. 30.0 in
  check_float_eps 1.0 "absolute capacity held" expected (Smp_host.domain_work host v20);
  check_float_eps 0.2 "credit compensated" (20.0 *. 2667.0 /. 1600.0)
    (scheduler.Hypervisor.Scheduler.effective_credit v20)

let () =
  Alcotest.run "smp"
    [
      ( "model",
        [
          Alcotest.test_case "per-package domains" `Quick smp_domains_per_package;
          Alcotest.test_case "per-core domains" `Quick smp_domains_per_core;
          Alcotest.test_case "per-core independence" `Quick smp_per_core_freq_independent;
          Alcotest.test_case "package shared" `Quick smp_package_freq_shared;
          Alcotest.test_case "capacity" `Quick smp_capacity;
          Alcotest.test_case "invalid" `Quick smp_invalid;
          Alcotest.test_case "power accounting" `Quick smp_power_accounting;
          Alcotest.test_case "per-core leakage savings" `Quick smp_per_core_saves_static;
        ] );
      ( "host",
        [
          Alcotest.test_case "parallel dispatch" `Quick smp_host_parallelism;
          Alcotest.test_case "vcpu bound" `Quick smp_host_vcpu_bound;
          Alcotest.test_case "two vcpus" `Quick smp_host_two_vcpus;
          Alcotest.test_case "host-wide credit" `Quick smp_host_credit_is_host_wide;
          Alcotest.test_case "work tracking" `Quick smp_host_work_tracking;
          Alcotest.test_case "series" `Quick smp_host_series;
        ] );
      ( "dvfs",
        [
          Alcotest.test_case "max-core keeps fast" `Quick max_core_rule_keeps_package_fast;
          Alcotest.test_case "max-core lowers when spread" `Quick max_core_rule_lowers_when_spread;
          Alcotest.test_case "pas-smp compensates" `Quick pas_smp_compensates;
        ] );
    ]

(* Tests for the Xen Credit scheduler: cap enforcement, non-work-conserving
   behaviour, Dom0 priority, uncapped domains, effective-credit updates. *)

module Workload = Workloads.Workload
module Domain = Hypervisor.Domain
module Scheduler = Hypervisor.Scheduler
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor

let _check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float_eps eps = Alcotest.(check (float eps))
let sec = Sim_time.of_sec

let run_host ?(duration = 10) scheduler =
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let host = Host.create ~sim ~processor ~scheduler () in
  Host.run_for host (sec duration);
  host

let share d duration = Sim_time.to_sec (Domain.cpu_time d) /. float_of_int duration

let cap_enforced_under_contention () =
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let b = Domain.create ~name:"b" ~credit_pct:70.0 (Workload.busy_loop ()) in
  ignore (run_host (Sched_credit.create [ a; b ]));
  check_float_eps 0.01 "a share" 0.20 (share a 10);
  check_float_eps 0.01 "b share" 0.70 (share b 10)

let non_work_conserving () =
  (* The defining fix-credit property: b's unused slices are NOT given to a. *)
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let b = Domain.create ~name:"b" ~credit_pct:70.0 (Workload.idle ()) in
  let host = run_host (Sched_credit.create [ a; b ]) in
  check_float_eps 0.01 "a stays at its cap" 0.20 (share a 10);
  check_float_eps 0.1 "host mostly idle" 2.0 (Sim_time.to_sec (Host.total_busy host))

let dom0_has_priority () =
  (* With total demand above 100%, Dom0 must still get its full 10%. *)
  let dom0 = Domain.create ~is_dom0:true ~name:"dom0" ~credit_pct:10.0 (Workload.busy_loop ()) in
  let a = Domain.create ~name:"a" ~credit_pct:50.0 (Workload.busy_loop ()) in
  let b = Domain.create ~name:"b" ~credit_pct:50.0 (Workload.busy_loop ()) in
  ignore (run_host (Sched_credit.create [ a; dom0; b ]));
  check_float_eps 0.01 "dom0 full share" 0.10 (share dom0 10)

let uncapped_soaks_leftover_only () =
  let capped = Domain.create ~name:"capped" ~credit_pct:30.0 (Workload.busy_loop ()) in
  let free = Domain.create ~name:"free" ~credit_pct:0.0 (Workload.busy_loop ()) in
  ignore (run_host (Sched_credit.create [ free; capped ]));
  check_float_eps 0.01 "capped gets its guarantee" 0.30 (share capped 10);
  check_float_eps 0.01 "uncapped gets the rest" 0.70 (share free 10)

let equal_credits_fair_rr () =
  let a = Domain.create ~name:"a" ~credit_pct:60.0 (Workload.busy_loop ()) in
  let b = Domain.create ~name:"b" ~credit_pct:60.0 (Workload.busy_loop ()) in
  ignore (run_host (Sched_credit.create [ a; b ]));
  (* Demand 120% over a 100% CPU: both should converge to ~50%. *)
  check_float_eps 0.02 "a half" 0.5 (share a 10);
  check_float_eps 0.02 "b half" 0.5 (share b 10)

let set_effective_credit_applies () =
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let sched = Sched_credit.create [ a ] in
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let host = Host.create ~sim ~processor ~scheduler:sched () in
  Host.run_for host (sec 5);
  sched.Scheduler.set_effective_credit a 40.0;
  check_float_eps 1e-9 "effective updated" 40.0 (sched.Scheduler.effective_credit a);
  check_float_eps 1e-9 "initial untouched" 20.0 (Domain.initial_credit a);
  let before = Sim_time.to_sec (Domain.cpu_time a) in
  Host.run_for host (sec 5);
  let delta = Sim_time.to_sec (Domain.cpu_time a) -. before in
  check_float_eps 0.05 "40% after raise" 2.0 delta

let set_effective_credit_lowering () =
  let a = Domain.create ~name:"a" ~credit_pct:80.0 (Workload.busy_loop ()) in
  let sched = Sched_credit.create [ a ] in
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let host = Host.create ~sim ~processor ~scheduler:sched () in
  sched.Scheduler.set_effective_credit a 10.0;
  Host.run_for host (sec 10);
  check_float_eps 0.02 "lowered cap respected" 0.10 (share a 10)

let set_effective_credit_negative () =
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let sched = Sched_credit.create [ a ] in
  Alcotest.check_raises "negative"
    (Invalid_argument "Sched_credit.set_effective_credit: negative credit") (fun () ->
      sched.Scheduler.set_effective_credit a (-5.0))

let unknown_domain_rejected () =
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let sched = Sched_credit.create [ a ] in
  let foreign = Domain.create ~name:"foreign" ~credit_pct:20.0 (Workload.idle ()) in
  Alcotest.check_raises "unknown" (Invalid_argument "Sched_credit: unknown domain") (fun () ->
      ignore (sched.Scheduler.effective_credit foreign))

let duplicate_domains_rejected () =
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workload.idle ()) in
  Alcotest.check_raises "duplicates" (Invalid_argument "Sched_credit.create: duplicate domains")
    (fun () -> ignore (Sched_credit.create [ a; a ]))

let quota_does_not_accumulate () =
  (* A domain idle for a while must not burst beyond its cap afterwards:
     quotas reset each period instead of accruing. *)
  let app =
    Workloads.Web_app.create
      ~rate_schedule:[ (Sim_time.zero, 0.0); (sec 5, 3.0) ]
      ()
  in
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workloads.Web_app.workload app) in
  let sched = Sched_credit.create [ a ] in
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let host = Host.create ~sim ~processor ~scheduler:sched () in
  Host.run_for host (sec 5);
  let before = Sim_time.to_sec (Domain.cpu_time a) in
  Host.run_for host (sec 5);
  let delta = Sim_time.to_sec (Domain.cpu_time a) -. before in
  check_float_eps 0.02 "still 20% after idling" 1.0 delta;
  check_bool "no back-pay at all" true (before < 0.01)

let boost_cuts_wake_latency () =
  let run ~boost =
    let sim = Simulator.create () in
    let processor = Processor.create Cpu_model.Arch.optiplex_755 in
    let cl = Workloads.Closed_loop.create ~clients:2 ~think_time:0.2 ~request_work:0.002 () in
    let interactive =
      Domain.create ~name:"interactive" ~credit_pct:10.0 (Workloads.Closed_loop.workload cl)
    in
    let batch =
      List.init 5 (fun i ->
          Domain.create ~name:(Printf.sprintf "b%d" i) ~credit_pct:18.0 (Workload.busy_loop ()))
    in
    let scheduler = Sched_credit.create ~boost (interactive :: batch) in
    let host = Host.create ~sim ~processor ~scheduler () in
    Host.run_for host (sec 30);
    Stats.Running.mean (Workloads.Closed_loop.response_times cl)
  in
  let with_boost = run ~boost:true and without = run ~boost:false in
  check_bool
    (Printf.sprintf "boost (%.4fs) beats no-boost (%.4fs)" with_boost without)
    true (with_boost < without)

let boost_preserves_shares () =
  (* BOOST reorders dispatch but must not change CPU shares. *)
  let a = Domain.create ~name:"a" ~credit_pct:30.0 (Workload.busy_loop ()) in
  let b = Domain.create ~name:"b" ~credit_pct:60.0 (Workload.busy_loop ()) in
  ignore (run_host (Sched_credit.create ~boost:true [ a; b ]));
  check_float_eps 0.01 "a share" 0.30 (share a 10);
  check_float_eps 0.01 "b share" 0.60 (share b 10)

let pick_excludes () =
  let a = Domain.create ~name:"a" ~credit_pct:50.0 (Workload.busy_loop ()) in
  let b = Domain.create ~name:"b" ~credit_pct:50.0 (Workload.busy_loop ()) in
  let sched = Sched_credit.create [ a; b ] in
  match
    sched.Scheduler.pick ~now:Sim_time.zero ~remaining:(Sim_time.of_ms 1)
      ~exclude:(Scheduler.Mask.of_list [ a ])
  with
  | Some { Scheduler.domain; _ } -> check_bool "avoids excluded" true (Domain.equal domain b)
  | None -> Alcotest.fail "expected a pick"

let pick_none_when_all_excluded () =
  let a = Domain.create ~name:"a" ~credit_pct:50.0 (Workload.busy_loop ()) in
  let sched = Sched_credit.create [ a ] in
  check_bool "none" true
    (sched.Scheduler.pick ~now:Sim_time.zero ~remaining:(Sim_time.of_ms 1)
       ~exclude:(Scheduler.Mask.of_list [ a ])
    = None)

let () =
  Alcotest.run "sched_credit"
    [
      ( "caps",
        [
          Alcotest.test_case "enforced under contention" `Quick cap_enforced_under_contention;
          Alcotest.test_case "non-work-conserving" `Quick non_work_conserving;
          Alcotest.test_case "quota does not accumulate" `Quick quota_does_not_accumulate;
        ] );
      ( "priorities",
        [
          Alcotest.test_case "dom0 first" `Quick dom0_has_priority;
          Alcotest.test_case "uncapped leftover" `Quick uncapped_soaks_leftover_only;
          Alcotest.test_case "equal credits fair" `Quick equal_credits_fair_rr;
        ] );
      ( "effective credit",
        [
          Alcotest.test_case "raise applies" `Quick set_effective_credit_applies;
          Alcotest.test_case "lower applies" `Quick set_effective_credit_lowering;
          Alcotest.test_case "negative rejected" `Quick set_effective_credit_negative;
        ] );
      ( "boost",
        [
          Alcotest.test_case "cuts wake latency" `Quick boost_cuts_wake_latency;
          Alcotest.test_case "preserves shares" `Quick boost_preserves_shares;
        ] );
      ( "interface",
        [
          Alcotest.test_case "unknown domain" `Quick unknown_domain_rejected;
          Alcotest.test_case "duplicates" `Quick duplicate_domains_rejected;
          Alcotest.test_case "pick excludes" `Quick pick_excludes;
          Alcotest.test_case "pick none" `Quick pick_none_when_all_excluded;
        ] );
    ]

(* Tests for the experiment layer: rigs, scenario runner, registry and
   experiment output plumbing. *)

module Scenario = Experiments.Scenario
module Rig = Experiments.Rig
module Registry = Experiments.Registry
module Experiment = Experiments.Experiment

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float_eps eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Rig *)

let rig_pi_baseline () =
  (* Full credit at maximum frequency: execution time = work. *)
  check_float_eps 0.05 "T = W" 5.0 (Rig.run_pi ~work:5.0 ())

let rig_pi_frequency_scaling () =
  let t = Rig.run_pi ~freq:1600 ~work:5.0 () in
  check_float_eps 0.05 "T = W / ratio" (5.0 *. 2667.0 /. 1600.0) t

let rig_pi_credit_scaling () =
  let t = Rig.run_pi ~credit:25.0 ~work:5.0 () in
  check_float_eps 0.2 "T = W / credit" 20.0 t

let rig_pi_timeout () =
  Alcotest.check_raises "does not finish" (Failure "Rig.run_pi: job did not finish in time")
    (fun () ->
      ignore (Rig.run_pi ~max_sim_time:(Sim_time.of_sec 10) ~credit:10.0 ~work:50.0 ()))

let rig_measure_load () =
  let load = Rig.measure_load ~measure:(Sim_time.of_sec 30) ~rate:0.25 () in
  check_float_eps 0.01 "load = rate / speed at fmax" 0.25 load;
  let load_min = Rig.measure_load ~freq:1600 ~measure:(Sim_time.of_sec 30) ~rate:0.25 () in
  check_float_eps 0.01 "load scales with 1/speed" (0.25 *. 2667.0 /. 1600.0) load_min

let rig_measure_cf_ideal () =
  check_float_eps 0.01 "optiplex cf = 1" 1.0 (Rig.measure_cf 1600)

let rig_measure_cf_nonlinear () =
  let arch = Cpu_model.Arch.elite_8300 in
  check_float_eps 0.01 "i7 cf_min recovered" 0.86206 (Rig.measure_cf ~arch 1600)

(* ------------------------------------------------------------------ *)
(* Scenario *)

let scenario_phases () =
  let r = Scenario.run (Scenario.spec ~scale:0.02 ()) in
  let a_lo, a_hi = Scenario.phase_bounds r Scenario.A in
  check_bool "phase A non-empty" true (Sim_time.compare a_hi a_lo > 0);
  (* V20 active alone in phase A. *)
  check_float_eps 2.0 "V20 active in A" 20.0 (Scenario.phase_mean r Scenario.A (Scenario.v20_load r));
  check_float_eps 2.0 "V70 idle in A" 0.0 (Scenario.phase_mean r Scenario.A (Scenario.v70_load r));
  check_float_eps 3.0 "V70 active in C" 70.0 (Scenario.phase_mean r Scenario.C (Scenario.v70_load r));
  check_bool "deficit non-negative" true (Scenario.sla_deficit r (Scenario.v20 r) >= 0.0)

let scenario_pas_exposed () =
  let r = Scenario.run (Scenario.spec ~sched:Scenario.Pas_scheduler ~gov:Scenario.No_governor ~scale:0.01 ()) in
  check_bool "pas instance" true (Scenario.pas r <> None)

let scenario_invalid_scale () =
  Alcotest.check_raises "scale" (Invalid_argument "Scenario.spec: scale must be positive")
    (fun () -> ignore (Scenario.spec ~scale:0.0 ()))

(* ------------------------------------------------------------------ *)
(* Registry and outputs *)

let registry_ids_unique () =
  let ids = Registry.ids () in
  check_int "20 experiments" 20 (List.length ids);
  check_int "unique" (List.length ids) (List.length (List.sort_uniq String.compare ids))

let registry_find () =
  check_bool "fig5" true (Registry.find "fig5" <> None);
  check_bool "table2" true (Registry.find "table2" <> None);
  check_bool "missing" true (Registry.find "fig99" = None)

let registry_covers_paper () =
  let ids = Registry.ids () in
  List.iter
    (fun id -> check_bool (id ^ " present") true (List.mem id ids))
    [
      "validation"; "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9";
      "fig10"; "table1"; "table2"; "ablation-impl"; "ablation-energy"; "ablation-smp";
      "ablation-cluster"; "ablation-window"; "ablation-sampling";
    ]

let experiment_output_and_csv () =
  match Registry.find "fig2" with
  | None -> Alcotest.fail "fig2 missing"
  | Some e ->
      let output = e.Experiment.run ~scale:0.01 in
      check_bool "has plots" true (List.length output.Experiment.plots > 0);
      check_bool "has frames" true (List.length output.Experiment.frames > 0);
      let dir = Filename.concat (Filename.get_temp_dir_name ()) "dvfs-test-csv" in
      let written = Experiment.save_csvs output ~dir in
      List.iter
        (fun path ->
          check_bool (path ^ " exists") true (Sys.file_exists path);
          Sys.remove path)
        written

let experiment_print_smoke () =
  match Registry.find "fig2" with
  | None -> Alcotest.fail "fig2 missing"
  | Some e ->
      let output = e.Experiment.run ~scale:0.01 in
      let buf = Buffer.create 1024 in
      let ppf = Format.formatter_of_buffer buf in
      Experiment.print ppf output;
      Format.pp_print_flush ppf ();
      check_bool "mentions id" true (String.length (Buffer.contents buf) > 100)

let extension_experiments_run () =
  List.iter
    (fun id ->
      match Registry.find id with
      | None -> Alcotest.failf "%s missing" id
      | Some e ->
          let output = e.Experiment.run ~scale:0.05 in
          check_bool (id ^ " produced a summary") true
            (String.length (Table.render output.Experiment.summary) > 40))
    [ "ablation-smp"; "ablation-window"; "ablation-sampling" ]

let () =
  Alcotest.run "experiments"
    [
      ( "rig",
        [
          Alcotest.test_case "pi baseline" `Quick rig_pi_baseline;
          Alcotest.test_case "pi frequency scaling" `Quick rig_pi_frequency_scaling;
          Alcotest.test_case "pi credit scaling" `Quick rig_pi_credit_scaling;
          Alcotest.test_case "pi timeout" `Quick rig_pi_timeout;
          Alcotest.test_case "measure load" `Quick rig_measure_load;
          Alcotest.test_case "measure cf (ideal)" `Quick rig_measure_cf_ideal;
          Alcotest.test_case "measure cf (i7)" `Quick rig_measure_cf_nonlinear;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "phases" `Quick scenario_phases;
          Alcotest.test_case "pas exposed" `Quick scenario_pas_exposed;
          Alcotest.test_case "invalid scale" `Quick scenario_invalid_scale;
        ] );
      ( "registry",
        [
          Alcotest.test_case "ids unique" `Quick registry_ids_unique;
          Alcotest.test_case "find" `Quick registry_find;
          Alcotest.test_case "covers the paper" `Quick registry_covers_paper;
        ] );
      ( "output",
        [
          Alcotest.test_case "csv save" `Quick experiment_output_and_csv;
          Alcotest.test_case "print" `Quick experiment_print_smoke;
          Alcotest.test_case "extension experiments" `Slow extension_experiments_run;
        ] );
    ]

(* Tests for the experiment layer: rigs, scenario runner, registry and
   experiment output plumbing. *)

module Scenario = Experiments.Scenario
module Rig = Experiments.Rig
module Registry = Experiments.Registry
module Experiment = Experiments.Experiment

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float_eps eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Rig *)

let rig_pi_baseline () =
  (* Full credit at maximum frequency: execution time = work. *)
  check_float_eps 0.05 "T = W" 5.0 (Rig.run_pi ~work:5.0 ())

let rig_pi_frequency_scaling () =
  let t = Rig.run_pi ~freq:1600 ~work:5.0 () in
  check_float_eps 0.05 "T = W / ratio" (5.0 *. 2667.0 /. 1600.0) t

let rig_pi_credit_scaling () =
  let t = Rig.run_pi ~credit:25.0 ~work:5.0 () in
  check_float_eps 0.2 "T = W / credit" 20.0 t

let rig_pi_timeout () =
  Alcotest.check_raises "does not finish" (Failure "Rig.run_pi: job did not finish in time")
    (fun () ->
      ignore (Rig.run_pi ~max_sim_time:(Sim_time.of_sec 10) ~credit:10.0 ~work:50.0 ()))

let rig_measure_load () =
  let load = Rig.measure_load ~measure:(Sim_time.of_sec 30) ~rate:0.25 () in
  check_float_eps 0.01 "load = rate / speed at fmax" 0.25 load;
  let load_min = Rig.measure_load ~freq:1600 ~measure:(Sim_time.of_sec 30) ~rate:0.25 () in
  check_float_eps 0.01 "load scales with 1/speed" (0.25 *. 2667.0 /. 1600.0) load_min

let rig_measure_cf_ideal () =
  check_float_eps 0.01 "optiplex cf = 1" 1.0 (Rig.measure_cf 1600)

let rig_measure_cf_nonlinear () =
  let arch = Cpu_model.Arch.elite_8300 in
  check_float_eps 0.01 "i7 cf_min recovered" 0.86206 (Rig.measure_cf ~arch 1600)

(* ------------------------------------------------------------------ *)
(* Scenario *)

let scenario_phases () =
  let r = Scenario.run (Scenario.spec ~scale:0.02 ()) in
  let a_lo, a_hi = Scenario.phase_bounds r Scenario.A in
  check_bool "phase A non-empty" true (Sim_time.compare a_hi a_lo > 0);
  (* V20 active alone in phase A. *)
  check_float_eps 2.0 "V20 active in A" 20.0 (Scenario.phase_mean r Scenario.A (Scenario.v20_load r));
  check_float_eps 2.0 "V70 idle in A" 0.0 (Scenario.phase_mean r Scenario.A (Scenario.v70_load r));
  check_float_eps 3.0 "V70 active in C" 70.0 (Scenario.phase_mean r Scenario.C (Scenario.v70_load r));
  check_bool "deficit non-negative" true (Scenario.sla_deficit r (Scenario.v20 r) >= 0.0)

let scenario_pas_exposed () =
  let r = Scenario.run (Scenario.spec ~sched:Scenario.Pas_scheduler ~gov:Scenario.No_governor ~scale:0.01 ()) in
  check_bool "pas instance" true (Scenario.pas r <> None)

let scenario_invalid_scale () =
  Alcotest.check_raises "scale" (Invalid_argument "Scenario.spec: scale must be positive")
    (fun () -> ignore (Scenario.spec ~scale:0.0 ()))

(* ------------------------------------------------------------------ *)
(* Registry and outputs *)

let registry_ids_unique () =
  let ids = Registry.ids () in
  check_int "21 experiments" 21 (List.length ids);
  check_int "unique" (List.length ids) (List.length (List.sort_uniq String.compare ids))

let registry_find () =
  check_bool "fig5" true (Registry.find "fig5" <> None);
  check_bool "table2" true (Registry.find "table2" <> None);
  check_bool "missing" true (Registry.find "fig99" = None)

let registry_covers_paper () =
  let ids = Registry.ids () in
  List.iter
    (fun id -> check_bool (id ^ " present") true (List.mem id ids))
    [
      "validation"; "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9";
      "fig10"; "table1"; "table2"; "ablation-impl"; "ablation-energy"; "ablation-smp";
      "ablation-cluster"; "ablation-window"; "ablation-sampling";
    ]

let experiment_output_and_csv () =
  match Registry.find "fig2" with
  | None -> Alcotest.fail "fig2 missing"
  | Some e ->
      let output = Experiment.run e ~scale:0.01 in
      check_bool "has plots" true (List.length output.Experiment.plots > 0);
      check_bool "has frames" true (List.length output.Experiment.frames > 0);
      let dir = Filename.concat (Filename.get_temp_dir_name ()) "dvfs-test-csv" in
      let written = Experiment.save_csvs output ~dir in
      List.iter
        (fun path ->
          check_bool (path ^ " exists") true (Sys.file_exists path);
          Sys.remove path)
        written

(* [save_csvs] file-system behaviour: path shape, nested-directory
   creation ([mkdir -p] — the seed's single-level [Sys.mkdir] failed on a
   missing parent), re-entrancy on an existing directory, and the
   exists-but-not-a-directory error. *)
let experiment_save_csvs_fs () =
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let root = Filename.concat (Filename.get_temp_dir_name ()) "dvfs-test-save-csvs" in
  rm_rf root;
  match Registry.find "fig2" with
  | None -> Alcotest.fail "fig2 missing"
  | Some e ->
      let output = Experiment.run e ~scale:0.01 in
      let nested = Filename.concat (Filename.concat root "a") "b" in
      let written = Experiment.save_csvs output ~dir:nested in
      check_bool "nested dir created" true (Sys.is_directory nested);
      check_int "one frame" 1 (List.length written);
      List.iter
        (fun path ->
          check_bool "path under dir" true (Filename.dirname path = nested);
          check_bool "path shape id-stem.csv" true
            (Filename.basename path = "fig2-series.csv");
          check_bool "file exists" true (Sys.file_exists path))
        written;
      (* Re-entrant: same directory again overwrites in place. *)
      let again = Experiment.save_csvs output ~dir:nested in
      check_bool "same paths on rerun" true (again = written);
      (* A plain file where the directory should be is a clear error, not a
         cascade of Sys_errors. *)
      let clash = Filename.concat root "clash" in
      let oc = open_out clash in
      output_string oc "not a directory";
      close_out oc;
      Alcotest.check_raises "dir is a file"
        (Invalid_argument
           (Printf.sprintf "Experiment.save_csvs: %s exists and is not a directory" clash))
        (fun () -> ignore (Experiment.save_csvs output ~dir:clash));
      rm_rf root

let experiment_default_seed () =
  check_int "pure function of id"
    (Experiment.default_seed ~id:"fig2")
    (Experiment.default_seed ~id:"fig2");
  check_bool "distinct per id" true
    (Experiment.default_seed ~id:"fig2" <> Experiment.default_seed ~id:"fig3");
  check_int "namespaced derivation"
    (Prng.derive_seed ~key:"experiment/fig2")
    (Experiment.default_seed ~id:"fig2")

let experiment_print_smoke () =
  match Registry.find "fig2" with
  | None -> Alcotest.fail "fig2 missing"
  | Some e ->
      let output = Experiment.run e ~scale:0.01 in
      let buf = Buffer.create 1024 in
      let ppf = Format.formatter_of_buffer buf in
      Experiment.print ppf output;
      Format.pp_print_flush ppf ();
      check_bool "mentions id" true (String.length (Buffer.contents buf) > 100)

let extension_experiments_run () =
  List.iter
    (fun id ->
      match Registry.find id with
      | None -> Alcotest.failf "%s missing" id
      | Some e ->
          let output = Experiment.run e ~scale:0.05 in
          check_bool (id ^ " produced a summary") true
            (String.length (Table.render output.Experiment.summary) > 40))
    [ "ablation-smp"; "ablation-window"; "ablation-sampling" ]

let () =
  Alcotest.run "experiments"
    [
      ( "rig",
        [
          Alcotest.test_case "pi baseline" `Quick rig_pi_baseline;
          Alcotest.test_case "pi frequency scaling" `Quick rig_pi_frequency_scaling;
          Alcotest.test_case "pi credit scaling" `Quick rig_pi_credit_scaling;
          Alcotest.test_case "pi timeout" `Quick rig_pi_timeout;
          Alcotest.test_case "measure load" `Quick rig_measure_load;
          Alcotest.test_case "measure cf (ideal)" `Quick rig_measure_cf_ideal;
          Alcotest.test_case "measure cf (i7)" `Quick rig_measure_cf_nonlinear;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "phases" `Quick scenario_phases;
          Alcotest.test_case "pas exposed" `Quick scenario_pas_exposed;
          Alcotest.test_case "invalid scale" `Quick scenario_invalid_scale;
        ] );
      ( "registry",
        [
          Alcotest.test_case "ids unique" `Quick registry_ids_unique;
          Alcotest.test_case "find" `Quick registry_find;
          Alcotest.test_case "covers the paper" `Quick registry_covers_paper;
        ] );
      ( "output",
        [
          Alcotest.test_case "csv save" `Quick experiment_output_and_csv;
          Alcotest.test_case "csv save file-system behaviour" `Quick experiment_save_csvs_fs;
          Alcotest.test_case "default seed" `Quick experiment_default_seed;
          Alcotest.test_case "print" `Quick experiment_print_smoke;
          Alcotest.test_case "extension experiments" `Slow extension_experiments_run;
        ] );
    ]

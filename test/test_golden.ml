(* Golden-output regression suite.

   Every registered experiment's summary table at scale 0.1 is snapshotted
   under [golden/<id>.expected].  A scheduler/governor/engine edit that
   silently changes any reproduced number fails here with a diff-style
   message instead of slipping through.

   Regenerating after an intentional numeric change:

     DVFS_GOLDEN_UPDATE=1 DVFS_GOLDEN_DIR=test/golden dune exec test/test_golden.exe

   from the repository root rewrites the snapshots in the source tree
   (under `dune runtest` the suite reads the sandboxed copies in
   [golden/]). *)

module Experiment = Experiments.Experiment
module Registry = Experiments.Registry

let golden_scale = 0.1

let golden_dir =
  match Sys.getenv_opt "DVFS_GOLDEN_DIR" with
  | Some d when String.trim d <> "" -> d
  | Some _ | None -> "golden"

let update_mode =
  match Sys.getenv_opt "DVFS_GOLDEN_UPDATE" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let golden_path id = Filename.concat golden_dir (id ^ ".expected")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

(* First differing line, for a readable failure message. *)
let first_diff expected actual =
  let e = String.split_on_char '\n' expected and a = String.split_on_char '\n' actual in
  let rec loop n = function
    | [], [] -> None
    | x :: _, [] -> Some (n, x, "<missing>")
    | [], y :: _ -> Some (n, "<missing>", y)
    | x :: xs, y :: ys -> if String.equal x y then loop (n + 1) (xs, ys) else Some (n, x, y)
  in
  loop 1 (e, a)

let check_experiment (e : Experiment.t) () =
  let output = Experiment.run e ~scale:golden_scale in
  let actual = Table.render output.Experiment.summary in
  let path = golden_path e.Experiment.id in
  if update_mode then begin
    write_file path actual;
    Printf.printf "updated %s\n" path
  end
  else if not (Sys.file_exists path) then
    Alcotest.failf
      "no golden snapshot %s — generate with DVFS_GOLDEN_UPDATE=1 DVFS_GOLDEN_DIR=test/golden \
       dune exec test/test_golden.exe"
      path
  else begin
    let expected = read_file path in
    if not (String.equal expected actual) then
      match first_diff expected actual with
      | Some (line, exp, act) ->
          Alcotest.failf
            "summary for %s drifted from %s at line %d:\n  expected: %s\n  actual:   %s\n\
             (intentional? regenerate with DVFS_GOLDEN_UPDATE=1)"
            e.Experiment.id path line exp act
      (* unreachable: strings differ, so a differing/missing line exists. *)
      | None -> assert false
  end

let () =
  Alcotest.run "golden"
    [
      ( "summary tables at scale 0.1",
        List.map
          (fun e ->
            Alcotest.test_case e.Experiment.id `Slow (check_experiment e))
          Registry.all );
    ]

(* Governor bake-off on a single web VM.

   One VM (70% credit) serves a diurnal load (night 20% of capacity, day
   90%).  Each governor is judged on energy, frequency transitions (wear /
   voltage-regulator stress) and the VM's p-max response time.

   This reproduces §2.2's governor taxonomy in action and shows why the
   paper's authors replaced the stock ondemand governor (Fig. 3 vs Fig. 4)
   before even getting to PAS.

   Run with: dune exec examples/governor_comparison.exe *)

module Domain = Hypervisor.Domain
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor
module Web_app = Workloads.Web_app

let duration = Sim_time.of_sec 1200

(* A compressed day: 10-minute night, 10-minute day. *)
let diurnal_schedule capacity =
  [
    (Sim_time.zero, 0.2 *. capacity);
    (Sim_time.of_sec 600, 0.9 *. capacity);
  ]

let run_governor (name, make_gov) =
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let app =
    Web_app.create ~timeout:(Sim_time.of_sec 10)
      ~rate_schedule:(diurnal_schedule 0.7) ()
  in
  let vm = Domain.create ~name:"web" ~credit_pct:70.0 (Web_app.workload app) in
  let dom0 = Domain.create ~is_dom0:true ~name:"Dom0" ~credit_pct:10.0 (Workloads.Workload.idle ()) in
  let domains = [ dom0; vm ] in
  let scheduler, governor =
    match make_gov with
    | `Governor make -> (Sched_credit.create domains, Some (make processor))
    | `Pas ->
        (Pas.Pas_sched.scheduler (Pas.Pas_sched.create ~processor domains), None)
  in
  let host = Host.create ~sim ~processor ~scheduler ?governor () in
  Host.run_for host duration;
  let response = Web_app.response_times app in
  ( name,
    Host.energy_joules host /. 1000.0,
    Cpu_model.Cpufreq.transitions (Processor.cpufreq processor),
    (if Stats.Running.count response = 0 then nan else Stats.Running.max response),
    Web_app.completed_requests app )

let () =
  let configs =
    [
      ("performance", `Governor Governors.Governor.performance);
      ("powersave", `Governor Governors.Governor.powersave);
      ("ondemand (stock)", `Governor (fun p -> Governors.Ondemand.create p));
      ("stable ondemand", `Governor (fun p -> Governors.Stable_ondemand.create p));
      ("conservative", `Governor (fun p -> Governors.Conservative.create p));
      ("schedutil", `Governor (fun p -> Governors.Schedutil.create p));
      ("PAS (integrated)", `Pas);
    ]
  in
  let table =
    Table.create
      ~columns:
        [
          ("governor", Table.Left);
          ("energy (kJ)", Table.Right);
          ("freq transitions", Table.Right);
          ("max response (s)", Table.Right);
          ("requests served", Table.Right);
        ]
  in
  List.iter
    (fun config ->
      let name, energy, transitions, worst, served = run_governor config in
      Table.add_row table
        [
          name;
          Table.cell_f energy;
          string_of_int transitions;
          (if Float.is_nan worst then "-" else Table.cell_f worst);
          string_of_int served;
        ])
    configs;
  print_endline "Governor comparison on a diurnal web workload (70% credit VM)\n";
  print_string (Table.render table);
  print_endline
    "\nThe stock ondemand governor pays for its reactivity with thousands of\n\
     transitions; powersave breaks the day-time SLA; PAS matches the stable\n\
     governor's energy while also enforcing credits."

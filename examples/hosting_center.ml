(* A hosting-center node: five customers with different SLAs and bursty
   traffic (Poisson arrivals, plus an ON/OFF Markov-modulated batch
   tenant) share one machine.  The provider wants to honour
   every SLA while spending as little energy as possible.

   The example runs the same tenant mix under three configurations and
   prints a per-tenant SLA report plus the energy bill:

   - Credit + stable ondemand: saves energy, breaks SLAs of busy tenants
     whenever the others are quiet;
   - SEDF (work-conserving): honours demand but burns energy and
     over-delivers to tenants that did not pay for the extra capacity;
   - PAS: honours exactly what each tenant bought, at near-minimal energy.

   Run with: dune exec examples/hosting_center.exe *)

module Domain = Hypervisor.Domain
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor
module Web_app = Workloads.Web_app

let duration = Sim_time.of_sec 1200

(* name, credit (% of host at max frequency), mean demand as a fraction of
   the credit, activity window.  carol-ci's batch traffic is not a steady
   rate but an ON/OFF Markov-modulated burst process. *)
let tenants =
  [
    ("alice-api", 25.0, 1.4, (0, 1200)); (* overloaded the whole time *)
    ("bob-shop", 20.0, 1.0, (0, 600)); (* exact load, first half *)
    ("carol-ci", 15.0, 2.0, (300, 900)); (* ON/OFF Markov bursts; reported mid-run *)
    ("dave-blog", 10.0, 0.3, (0, 1200)); (* light and steady *)
    ("erin-etl", 20.0, 1.2, (600, 1200)); (* second half only *)
  ]

type tenant_app = Web of Web_app.t | Bursty of Workloads.Markov_load.t

let build_domains seed =
  let rng = Prng.create ~seed in
  let dom0 = Domain.create ~is_dom0:true ~name:"Dom0" ~credit_pct:10.0 (Workloads.Workload.idle ()) in
  let apps_and_domains =
    List.map
      (fun (name, credit, demand, (t0, t1)) ->
        let rate = credit /. 100.0 *. demand in
        if String.equal name "carol-ci" then begin
          let burst =
            Workloads.Markov_load.create ~seed:(seed + 17) ~on_rate:(rate *. 2.0)
              ~off_rate:0.0 ~mean_on:20.0 ~mean_off:20.0 ()
          in
          let domain =
            Domain.create ~name ~credit_pct:credit
              (Workloads.Markov_load.workload burst ~request_work:0.005)
          in
          (Bursty burst, domain, (t0, t1))
        end
        else begin
          let app =
            Web_app.create
              ~arrival:(Web_app.Poisson (Prng.split rng))
              ~timeout:(Sim_time.of_sec 10)
              ~rate_schedule:
                (Workloads.Phases.three_phase
                   ~active_from:(Sim_time.max (Sim_time.of_us 1) (Sim_time.of_sec t0))
                   ~active_until:(Sim_time.of_sec t1) ~rate)
              ()
          in
          let domain = Domain.create ~name ~credit_pct:credit (Web_app.workload app) in
          (Web app, domain, (t0, t1))
        end)
      tenants
  in
  (dom0, apps_and_domains)

let run_config name make_scheduler =
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let dom0, tenants' = build_domains 2013 in
  let domains = dom0 :: List.map (fun (_, d, _) -> d) tenants' in
  let scheduler, governor = make_scheduler processor domains in
  let host = Host.create ~sim ~processor ~scheduler ?governor () in
  Host.run_for host duration;
  Printf.printf "%s\n%s\n" name (String.make (String.length name) '-');
  let table =
    Table.create
      ~columns:
        [
          ("tenant", Table.Left);
          ("bought %", Table.Right);
          ("delivered % (absolute)", Table.Right);
          ("p90 response (s)", Table.Right);
          ("timeouts", Table.Right);
        ]
  in
  List.iter
    (fun (app, domain, (t0, t1)) ->
      let lo = Sim_time.of_sec (t0 + ((t1 - t0) / 10)) in
      let hi = Sim_time.of_sec (t1 - ((t1 - t0) / 10)) in
      let abs = Host.series_domain_absolute_load host domain in
      let worst_response, timeouts =
        match app with
        | Web w ->
            let response = Web_app.response_times w in
            ( (if Stats.Running.count response = 0 then "-"
               else Table.cell_f (Stats.Running.max response)),
              string_of_int (Web_app.timed_out_requests w) )
        | Bursty b ->
            (Printf.sprintf "burst backlog %.1f" (Workloads.Markov_load.queued_work b), "-")
      in
      Table.add_row table
        [
          Domain.name domain;
          Table.cell_f1 (Domain.initial_credit domain);
          Table.cell_f1 (Series.mean_between abs lo hi);
          worst_response;
          timeouts;
        ])
    tenants';
  print_string (Table.render table);
  Printf.printf "energy: %.1f kJ   mean power: %.1f W\n\n"
    (Host.energy_joules host /. 1000.0)
    (Host.mean_watts host)

let () =
  print_endline "Hosting-center node: five tenants, three configurations\n";
  run_config "credit + stable ondemand" (fun processor domains ->
      (Sched_credit.create domains, Some (Governors.Stable_ondemand.create processor)));
  run_config "sedf (work conserving)" (fun processor domains ->
      (Sched_sedf.create domains, Some (Governors.Stable_ondemand.create processor)));
  run_config "PAS" (fun processor domains ->
      (Pas.Pas_sched.scheduler (Pas.Pas_sched.create ~processor domains), None))

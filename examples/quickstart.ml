(* Quickstart: the paper's core problem and its fix, in ~60 lines.

   Two VMs share a host: V20 bought 20% of the CPU and is busy, V70 bought
   70% and is idle.  Under the stock setup (Credit scheduler + ondemand
   governor) the idle V70 drags the frequency down and V20 is robbed of
   capacity it paid for.  The PAS scheduler recomputes credits whenever the
   frequency moves, so V20 keeps its 20% absolute capacity AND the host
   still saves energy.

   Run with: dune exec examples/quickstart.exe *)

module Domain = Hypervisor.Domain
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor

let duration = Sim_time.of_sec 300

(* Build a host where V20 has more demand than its credit and V70 sleeps. *)
let run_scenario ~use_pas =
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let v20_app =
    Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate:0.6) ()
  in
  let v20 = Domain.create ~name:"V20" ~credit_pct:20.0 (Workloads.Web_app.workload v20_app) in
  let v70 = Domain.create ~name:"V70" ~credit_pct:70.0 (Workloads.Workload.idle ()) in
  let dom0 = Domain.create ~is_dom0:true ~name:"Dom0" ~credit_pct:10.0 (Workloads.Workload.idle ()) in
  let domains = [ dom0; v20; v70 ] in
  let host =
    if use_pas then begin
      let pas = Pas.Pas_sched.create ~processor domains in
      Host.create ~sim ~processor ~scheduler:(Pas.Pas_sched.scheduler pas) ()
    end
    else
      Host.create ~sim ~processor ~scheduler:(Sched_credit.create domains)
        ~governor:(Governors.Stable_ondemand.create processor) ()
  in
  Host.run_for host duration;
  (host, v20)

let report name (host, v20) =
  let window_lo = Sim_time.of_sec 60 and window_hi = duration in
  let absolute = Host.series_domain_absolute_load host v20 in
  Printf.printf "%-24s V20 absolute capacity: %5.1f%% of the host (bought: 20.0%%)\n" name
    (Series.mean_between absolute window_lo window_hi);
  Printf.printf "%-24s mean frequency: %4.0f MHz   energy: %5.1f kJ\n\n" ""
    (Series.mean_between (Host.series_frequency host) window_lo window_hi)
    (Host.energy_joules host /. 1000.0)

let () =
  print_endline "DVFS-aware credit enforcement: quickstart";
  print_endline "=========================================\n";
  report "credit + ondemand:" (run_scenario ~use_pas:false);
  report "PAS (the paper's fix):" (run_scenario ~use_pas:true);
  print_endline "PAS restores V20's sold capacity while keeping the frequency low."

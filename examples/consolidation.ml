(* Consolidation is memory-bound, so DVFS still matters (§2.3) — and the
   two compose (§7's closing perspective).

   A fleet of VMs is handed to the Cluster.Manager, which packs them onto
   the fewest nodes that fit by memory and credit budget (first-fit
   decreasing), switches the empty nodes to standby, and optionally
   re-packs every epoch from measured demand.  We compare fleet energy and
   served work across management policies.

   Run with: dune exec examples/consolidation.exe *)

module Manager = Cluster.Manager
module Vm = Cluster.Vm
module Web_app = Workloads.Web_app

let duration = Sim_time.of_sec 900

(* (name, cpu credit %, memory MB, demand/credit ratio, active window s) *)
let fleet_spec =
  [
    ("vm-01", 20.0, 2048, 1.2, (0, 300)); ("vm-02", 15.0, 1024, 0.8, (0, 450));
    ("vm-03", 10.0, 1024, 1.5, (150, 600)); ("vm-04", 25.0, 2048, 0.4, (300, 750));
    ("vm-05", 10.0, 512, 1.0, (0, 900)); ("vm-06", 20.0, 2048, 0.2, (450, 900));
    ("vm-07", 15.0, 2048, 1.1, (600, 900)); ("vm-08", 10.0, 1024, 0.9, (0, 900));
    ("vm-09", 5.0, 512, 2.0, (200, 700)); ("vm-10", 20.0, 1024, 0.5, (100, 800));
  ]

let build_fleet () =
  List.map
    (fun (name, credit, memory_mb, demand, (t0, t1)) ->
      let app =
        Web_app.create ~timeout:(Sim_time.of_sec 10)
          ~rate_schedule:
            (Workloads.Phases.three_phase
               ~active_from:(Sim_time.max (Sim_time.of_us 1) (Sim_time.of_sec t0))
               ~active_until:(Sim_time.of_sec t1)
               ~rate:(credit /. 100.0 *. demand))
          ()
      in
      (app, Vm.create ~name ~credit_pct:credit ~memory_mb (Web_app.workload app)))
    fleet_spec

let run_config (label, policy, rebalance) =
  let sim = Simulator.create () in
  let apps_vms = build_fleet () in
  let vms = List.map snd apps_vms in
  let manager = Manager.create ~node_memory_mb:16384 ~policy ~sim ~nodes:4 vms in
  (match rebalance with
  | Some every -> Manager.auto_rebalance manager ~every
  | None -> ());
  let active = Stats.Running.create () in
  ignore
    (Simulator.every sim (Sim_time.of_sec 10) (fun () ->
         Stats.Running.add active (float_of_int (Manager.active_nodes manager))));
  Manager.run_for manager duration;
  let injected = List.fold_left (fun a (app, _) -> a +. Web_app.injected_work app) 0.0 apps_vms in
  let served = List.fold_left (fun a (app, _) -> a +. Web_app.completed_work app) 0.0 apps_vms in
  ( label,
    Manager.energy_joules manager /. 1000.0,
    Stats.Running.mean active,
    Manager.migrations manager,
    served /. injected *. 100.0 )

let () =
  let sim = Simulator.create () in
  let vms = List.map snd (build_fleet ()) in
  let manager = Manager.create ~node_memory_mb:16384 ~sim ~nodes:4 vms in
  Printf.printf "Initial packing of %d VMs (16 GB nodes): %d of %d nodes active\n"
    (List.length vms) (Manager.active_nodes manager) (Manager.nodes manager);
  List.iter
    (fun vm -> Printf.printf "  %-6s -> node %d\n" (Vm.name vm) (Manager.node_of_vm manager vm))
    vms;
  print_newline ();
  let table =
    Table.create
      ~columns:
        [
          ("configuration", Table.Left);
          ("fleet energy (kJ)", Table.Right);
          ("mean active nodes", Table.Right);
          ("migrations", Table.Right);
          ("work served %", Table.Right);
        ]
  in
  List.iter
    (fun config ->
      let label, energy, active, migrations, served = run_config config in
      Table.add_row table
        [
          label;
          Table.cell_f energy;
          Table.cell_f active;
          string_of_int migrations;
          Table.cell_f1 served;
        ])
    [
      ("static + performance (no DVFS)", Manager.No_dvfs, None);
      ("static + stable ondemand", Manager.Credit_ondemand, None);
      ("static + PAS nodes", Manager.Pas_nodes, None);
      ("consolidating (60 s) + PAS nodes", Manager.Pas_nodes, Some (Sim_time.of_sec 60));
    ];
  print_string (Table.render table);
  print_endline
    "\nEven after memory-bound consolidation the hosts are CPU-underloaded, so\n\
     DVFS saves real energy; PAS saves it without breaking tenant credits, and\n\
     epoch consolidation powers whole nodes off on top."
